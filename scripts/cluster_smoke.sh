#!/usr/bin/env bash
# End-to-end smoke test of the distributed simulation cluster, including
# worker loss: start a coordinator (proteus-served -cluster) and two pull
# workers, submit a crash-campaign sweep, SIGKILL one worker while it holds
# leases, and assert that (a) the campaign still completes, (b) the
# coordinator requeued the dead worker's leases (nonzero requeue counter,
# nothing quarantined), and (c) the report is byte-identical to a clean
# two-worker run of the same campaign. Binaries are built with -race.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18090}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# QE,SS x Proteus,ATOM = 4 tuples; a deep sweep keeps each tuple busy long
# enough that the victim dies holding unfinished leases.
SPEC='{"type":"campaign","benches":"QE,SS","schemes":"Proteus,ATOM","sweep":48,"faults":"torn"}'

say() { echo "cluster_smoke: $*" >&2; }

go build -race -o "$WORK/proteus-served" ./cmd/proteus-served
go build -race -o "$WORK/proteus-worker" ./cmd/proteus-worker
say "built proteus-served and proteus-worker (-race)"

start_coordinator() { # $1 = store dir, $2 = log file
    "$WORK/proteus-served" -addr "$ADDR" -cluster -lease-ttl 2s \
        -store "$1" -workers 2 -drain-timeout 30s 2>"$2" &
    COORD_PID=$!
    PIDS+=("$COORD_PID")
    for i in $(seq 1 50); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$COORD_PID" 2>/dev/null || { say "coordinator died:"; cat "$2" >&2; exit 1; }
        sleep 0.2
    done
    say "coordinator never became healthy"; exit 1
}

start_worker() { # $1 = name, $2 = batch
    "$WORK/proteus-worker" -coordinator "$BASE" -name "$1" -batch "$2" \
        2>"$WORK/$1.log" &
    PIDS+=("$!")
    disown "$!" 2>/dev/null || true
}

submit() { curl -fsS -XPOST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id; }

wait_done() { # $1 = job id, $2 = output file for the result payload
    for i in $(seq 1 600); do
        STATUS=$(curl -fsS "$BASE/v1/jobs/$1")
        case "$(echo "$STATUS" | jq -r .state)" in
            done) echo "$STATUS" | jq -c .result >"$2"; return 0 ;;
            failed|cancelled) say "job $1 failed: $STATUS"; exit 1 ;;
        esac
        sleep 0.5
    done
    say "job $1 never finished"; exit 1
}

cstat() { curl -fsS "$BASE/v1/cluster/stats" | jq "$1"; }

# ---- Pass 1: two workers, one SIGKILLed while holding leases. ----------
start_coordinator "$WORK/store1" "$WORK/coord1.log"
say "coordinator up on $ADDR"

start_worker victim 4
VICTIM_PID="${PIDS[-1]}"
JOB=$(submit)
say "submitted campaign $JOB; waiting for the victim to lease work"

LEASED=0
for i in $(seq 1 100); do
    LEASED=$(cstat '[.workers[]? | select(.name=="victim") | .leased] | add // 0')
    [ "$LEASED" -gt 0 ] && break
    sleep 0.1
done
[ "$LEASED" -gt 0 ] || { say "victim never leased anything"; exit 1; }

kill -9 "$VICTIM_PID"
say "victim SIGKILLed holding $LEASED lease(s); starting survivors"
start_worker w1 2
start_worker w2 2

wait_done "$JOB" "$WORK/report_loss.json"
say "campaign completed despite worker loss"

REQUEUED=$(cstat .requeued)
QUARANTINED=$(cstat .quarantined_total)
[ "$REQUEUED" -gt 0 ] || { say "requeue counter is 0 — loss path never ran"; exit 1; }
[ "$QUARANTINED" = 0 ] || { say "$QUARANTINED item(s) quarantined"; exit 1; }
say "coordinator requeued $REQUEUED lease(s), quarantined none"

kill -TERM "$COORD_PID"; wait "$COORD_PID" || true

# ---- Pass 2: clean two-worker run of the same campaign. ----------------
start_coordinator "$WORK/store2" "$WORK/coord2.log"
start_worker c1 2
start_worker c2 2
JOB=$(submit)
wait_done "$JOB" "$WORK/report_clean.json"
say "clean run completed"

# ---- Determinism: loss run and clean run agree byte for byte. ----------
if ! cmp -s "$WORK/report_loss.json" "$WORK/report_clean.json"; then
    say "reports differ between the loss run and the clean run:"
    diff <(jq . "$WORK/report_loss.json") <(jq . "$WORK/report_clean.json") | head -40 >&2
    exit 1
fi
say "reports byte-identical across worker loss — PASS"
