#!/usr/bin/env bash
# End-to-end smoke test of the provenance ledger: start proteus-served
# with batched admission enabled, run a small sweep through the front
# door, read back the chain head and an inclusion proof over HTTP, drain
# the server, then audit the store offline with proteus-ledger — the
# audit must pass on the honest store and must exit nonzero after a
# single byte of a stored entry is flipped.
#
# OUT_DIR (optional): directory to copy the ledger file into for CI
# artifact upload.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
OUT_DIR="${OUT_DIR:-}"
trap 'rm -rf "$WORK"; kill "$SERVER_PID" 2>/dev/null || true' EXIT

say() { echo "ledger_smoke: $*" >&2; }

go build -o "$WORK/proteus-served" ./cmd/proteus-served
go build -o "$WORK/proteus-ledger" ./cmd/proteus-ledger
say "built proteus-served + proteus-ledger"

"$WORK/proteus-served" -addr "$ADDR" -store "$WORK/store" -queue 16 -workers 2 \
    -ledger -ledger-batch 8 -ledger-wait 10ms -drain-timeout 30s \
    2>"$WORK/server.log" &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        say "server died during startup:"; cat "$WORK/server.log" >&2; exit 1
    fi
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || { say "server never became healthy"; exit 1; }
say "server healthy on $ADDR (ledger on, batch 8 / 10ms)"

# A small sweep: both schemes, two thread counts, through the front door
# so every admission and every result is sealed into the ledger.
IDS=()
for SCHEME in Proteus ATOM; do
    for THREADS in 1 2; do
        SPEC="{\"type\":\"sim\",\"bench\":\"QE\",\"scheme\":\"$SCHEME\",\"threads\":$THREADS,\"simops\":16,\"initops\":64}"
        SUBMIT=$(curl -fsS -XPOST "$BASE/v1/jobs" -d "$SPEC")
        ID=$(echo "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
        [ -n "$ID" ] || { say "no job id in response: $SUBMIT"; exit 1; }
        IDS+=("$ID")
    done
done
say "submitted ${#IDS[@]} sweep jobs"

KEY=""
for ID in "${IDS[@]}"; do
    STATE=""
    for i in $(seq 1 150); do
        STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
        STATE=$(echo "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
        case "$STATE" in
            done) break ;;
            failed|cancelled) say "job $ID ended $STATE: $STATUS"; exit 1 ;;
        esac
        sleep 0.2
    done
    [ "$STATE" = "done" ] || { say "job $ID stuck in state '$STATE'"; exit 1; }
    # The admission proof rides on the completed task; remember one key
    # for the HTTP + offline proof checks.
    K=$(echo "$STATUS" | sed -n 's/.*"key":"\([0-9a-f]*\)".*/\1/p')
    [ -n "$K" ] && KEY="$K"
done
say "sweep done (proof key $KEY)"
[ -n "$KEY" ] || { say "no admission proof key in any completed task"; exit 1; }

# The chain tip and an inclusion proof are served over HTTP.
HEAD=$(curl -fsS "$BASE/v1/ledger/head")
echo "$HEAD" | grep -q '"head"' || { say "ledger head malformed: $HEAD"; exit 1; }
PROOF=$(curl -fsS "$BASE/v1/ledger/proof?key=$KEY")
echo "$PROOF" | grep -q '"root"' || { say "ledger proof malformed: $PROOF"; exit 1; }
say "/v1/ledger/head and /v1/ledger/proof answer"

kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
if [ "$EXIT" != 0 ]; then
    say "server exited $EXIT after SIGTERM:"; cat "$WORK/server.log" >&2; exit 1
fi
say "SIGTERM drained cleanly"

# Offline: the full chain must verify and the audit must be clean.
"$WORK/proteus-ledger" verify -store "$WORK/store" -key "$KEY" >/dev/null
say "offline chain + proof verification passed"
"$WORK/proteus-ledger" audit -store "$WORK/store" > "$WORK/audit-clean.json"
say "clean audit passed"

if [ -n "$OUT_DIR" ]; then
    mkdir -p "$OUT_DIR"
    cp "$WORK/store/ledger/ledger.jsonl" "$OUT_DIR/ledger.jsonl"
    cp "$WORK/audit-clean.json" "$OUT_DIR/audit-clean.json"
    say "ledger artifact copied to $OUT_DIR"
fi

# Tamper: flip one byte inside a stored result and the audit must fail.
ENTRY=$(find "$WORK/store" -path '*/ledger' -prune -o -name '*.json' -print | head -1)
[ -n "$ENTRY" ] || { say "no store entry found to tamper with"; exit 1; }
python3 - "$ENTRY" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
# Flip a byte in the middle of the document, inside the result payload.
data[len(data) // 2] ^= 0x01
open(path, "wb").write(bytes(data))
EOF
say "flipped one byte in $(basename "$ENTRY")"

if "$WORK/proteus-ledger" audit -store "$WORK/store" > "$WORK/audit-tampered.json" 2>&1; then
    say "audit PASSED on a tampered store — ledger is not tamper-evident"
    cat "$WORK/audit-tampered.json" >&2
    exit 1
fi
say "audit caught the tampered entry (nonzero exit) — PASS"
