#!/usr/bin/env bash
# Fast litmus gate: sweep the curated program subset under every
# failure-safe scheme and every fault model, require zero divergences,
# and require the report bytes to be identical under the reference
# stepper at a different worker count (the determinism contract). Any
# divergence exits nonzero and leaves its reproducer directories under
# $OUT_DIR/repro/ for upload.
set -euo pipefail

OUT_DIR="${OUT_DIR:-litmus}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

say() { echo "litmus_smoke: $*" >&2; }

go build -o "$WORK/proteus-litmus" ./cmd/proteus-litmus
say "built proteus-litmus"

mkdir -p "$OUT_DIR"
"$WORK/proteus-litmus" -programs curated -faults all \
    -out "$OUT_DIR/report.json" -artifacts "$OUT_DIR/repro"
say "curated sweep clean (exit 0)"

grep -q '"divergences": 0' "$OUT_DIR/report.json" \
    || { say "report totals claim divergences"; exit 1; }

if [ -d "$OUT_DIR/repro" ] && [ -n "$(ls -A "$OUT_DIR/repro")" ]; then
    say "reproducer directory is not empty despite a clean sweep"
    exit 1
fi

# Determinism: reference stepper, single worker, same seed -> same bytes.
"$WORK/proteus-litmus" -programs curated -faults all -jobs 1 -stepper reference \
    -out "$WORK/report-ref.json" -q
cmp "$OUT_DIR/report.json" "$WORK/report-ref.json" \
    || { say "report bytes differ between steppers/worker counts"; exit 1; }
say "report byte-identical under reference stepper at -jobs 1"

# A named program parses and sweeps standalone.
"$WORK/proteus-litmus" -programs "Ps:xy;x|y" -scheme Proteus -faults torn \
    -out "$WORK/one.json" -q
say "single named program swept — PASS"
