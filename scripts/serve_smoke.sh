#!/usr/bin/env bash
# End-to-end smoke test of the simulation job server: start proteus-served
# with a small queue and a fresh result store, submit a tiny simulation,
# poll it to completion, assert that an identical resubmission is answered
# from the cache (no new simulation), scrape /metrics, then SIGTERM the
# server and assert it drains and exits 0.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"; kill "$SERVER_PID" 2>/dev/null || true' EXIT

SPEC='{"type":"sim","bench":"QE","scheme":"Proteus","threads":1,"simops":16,"initops":64}'

say() { echo "serve_smoke: $*" >&2; }

go build -o "$WORK/proteus-served" ./cmd/proteus-served
say "built proteus-served"

"$WORK/proteus-served" -addr "$ADDR" -store "$WORK/store" -queue 4 -workers 1 \
    -drain-timeout 30s 2>"$WORK/server.log" &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        say "server died during startup:"; cat "$WORK/server.log" >&2; exit 1
    fi
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || { say "server never became healthy"; exit 1; }
say "server healthy on $ADDR"

# Submit asynchronously and poll to completion.
SUBMIT=$(curl -fsS -XPOST "$BASE/v1/jobs" -d "$SPEC")
ID=$(echo "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { say "no job id in response: $SUBMIT"; exit 1; }
say "submitted $ID"

STATE=""
for i in $(seq 1 150); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
    STATE=$(echo "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|cancelled) say "job $ID ended $STATE: $STATUS"; exit 1 ;;
    esac
    sleep 0.2
done
[ "$STATE" = "done" ] || { say "job $ID stuck in state '$STATE'"; exit 1; }
say "job $ID done"

metric() { curl -fsS "$BASE/metrics" | awk -v m="$1" '$1 == m {print $2}'; }

SIMULATED_BEFORE=$(metric proteus_engine_simulated_total)

# An identical synchronous resubmission must be answered from the cache:
# the result store (or memo table) serves it, nothing new is simulated.
RESULT2=$(curl -fsS -XPOST "$BASE/v1/jobs?wait=1" -d "$SPEC")
echo "$RESULT2" | grep -q '"state":"done"' || { say "resubmission not done: $RESULT2"; exit 1; }
SIMULATED_AFTER=$(metric proteus_engine_simulated_total)
if [ "$SIMULATED_AFTER" != "$SIMULATED_BEFORE" ]; then
    say "resubmission re-simulated: simulated_total $SIMULATED_BEFORE -> $SIMULATED_AFTER"
    exit 1
fi
say "resubmission was a cache hit (simulated_total stayed $SIMULATED_AFTER)"

# The exposition must cover all three layers.
METRICS=$(curl -fsS "$BASE/metrics")
for m in proteus_serve_requests_total proteus_serve_queue_depth \
         proteus_serve_request_duration_seconds_bucket \
         proteus_engine_simulated_total proteus_engine_store_hits_total \
         proteus_store_writes_total; do
    echo "$METRICS" | grep -q "^$m" || { say "metric $m missing"; exit 1; }
done
say "/metrics exposes serve, engine and store layers"

# Graceful drain: SIGTERM must lead to a clean exit 0.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
if [ "$EXIT" != 0 ]; then
    say "server exited $EXIT after SIGTERM:"; cat "$WORK/server.log" >&2; exit 1
fi
say "SIGTERM drained cleanly (exit 0)"

# The store survives the server: entries are on disk.
ENTRIES=$(find "$WORK/store" -name '*.json' | wc -l)
[ "$ENTRIES" -ge 1 ] || { say "result store is empty after shutdown"; exit 1; }
say "result store holds $ENTRIES entr$( [ "$ENTRIES" = 1 ] && echo y || echo ies) — PASS"
